package logrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"mspr/internal/dv"
)

// enc is a tiny append-only encoder used by all record types.
type enc struct{ b []byte }

// Encode buffers are pooled: the request hot path encodes a record,
// appends it to the WAL (which copies the payload into its own batch
// buffer), and is then done with the bytes. Two pools make the cycle
// allocation-free in steady state: bufPool holds loaded buffers ready to
// encode into, shellPool holds the empty *encBuf boxes so re-pooling a
// buffer does not allocate a fresh box each time.
type encBuf struct{ b []byte }

var (
	bufPool   sync.Pool // *encBuf with cap(b) > 0
	shellPool = sync.Pool{New: func() any { return new(encBuf) }}
)

// newEnc returns an encoder backed by a pooled buffer when one is
// available.
func newEnc() enc {
	if v := bufPool.Get(); v != nil {
		eb := v.(*encBuf)
		b := eb.b[:0]
		eb.b = nil
		shellPool.Put(eb)
		return enc{b: b}
	}
	return enc{b: make([]byte, 0, 256)}
}

// Recycle returns an encoded payload's buffer to the pool. Callers may
// only recycle a payload after every reader has copied it (wal.Append
// copies into its batch buffer synchronously, so recycling right after a
// successful or failed Append is safe). Tiny and oversized buffers are
// dropped to keep the pool from pinning outliers.
func Recycle(p []byte) {
	if cap(p) < 64 || cap(p) > 1<<16 {
		return
	}
	eb := shellPool.Get().(*encBuf)
	eb.b = p[:0]
	bufPool.Put(eb)
}

func (e *enc) u8(v byte)       { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)    { e.b = binary.AppendUvarint(e.b, uint64(v)) }
func (e *enc) u64(v uint64)    { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)     { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) boolv(v bool)    { e.b = append(e.b, b2u(v)) }
func (e *enc) str(s string)    { e.u64(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) bytes(p []byte)  { e.u64(uint64(len(p))); e.b = append(e.b, p...) }
func (e *enc) vec(v dv.Vector) { e.b = v.AppendBinary(e.b) }

func (e *enc) strmap(m map[string][]byte) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.u64(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.bytes(m[k])
	}
}

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// dec decodes the formats produced by enc, accumulating the first error.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("logrec: truncated or corrupt %s", what)
	}
}

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail("u8")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) u32() uint32 { return uint32(d.u64()) }

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) boolv() bool { return d.u8() == 1 }

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) bytes() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)) < n {
		d.fail("bytes")
		return nil
	}
	p := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return p
}

func (d *dec) vec() dv.Vector {
	if d.err != nil {
		return nil
	}
	v, rest, err := dv.DecodeVector(d.b)
	if err != nil {
		d.err = err
		return nil
	}
	d.b = rest
	return v
}

func (d *dec) strmap() map[string][]byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	m := make(map[string][]byte, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.str()
		m[k] = d.bytes()
	}
	return m
}

func (d *dec) done(what string) error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return errors.New("logrec: trailing bytes in " + what)
	}
	return nil
}
