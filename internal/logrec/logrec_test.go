package logrec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mspr/internal/dv"
	"mspr/internal/wal"
)

func vec(pairs ...any) dv.Vector {
	v := dv.Vector{}
	for i := 0; i+2 < len(pairs)+1 && i+2 <= len(pairs); i += 3 {
		v = v.Set(dv.ProcessID(pairs[i].(string)),
			dv.StateID{Epoch: uint32(pairs[i+1].(int)), LSN: int64(pairs[i+2].(int))})
	}
	return v
}

func TestReqReceiveRoundTrip(t *testing.T) {
	for _, r := range []ReqReceive{
		{Session: "s1", Seq: 1, Method: "m", Arg: []byte("hello")},
		{Session: "s2", Seq: 42, Method: "method1", Arg: nil, HasDV: true, DV: vec("p", 1, 10)},
		{Session: "", Seq: 0, Method: "", Arg: []byte{}},
	} {
		got, err := DecodeReqReceive(r.Encode())
		if err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
		if got.Session != r.Session || got.Seq != r.Seq || got.Method != r.Method ||
			string(got.Arg) != string(r.Arg) || got.HasDV != r.HasDV || !got.DV.Equal(r.DV) {
			t.Fatalf("round trip: got %+v, want %+v", got, r)
		}
	}
}

func TestReplyReceiveRoundTrip(t *testing.T) {
	r := ReplyReceive{Session: "s", OutSession: "s~a~b", Seq: 9, Status: 1,
		Reply: []byte("out"), HasDV: true, DV: vec("x", 2, 77)}
	got, err := DecodeReplyReceive(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.OutSession != r.OutSession || got.Seq != r.Seq || got.Status != r.Status ||
		string(got.Reply) != "out" || !got.DV.Equal(r.DV) {
		t.Fatalf("got %+v", got)
	}
}

func TestSharedReadWriteRoundTrip(t *testing.T) {
	rr := SharedRead{Session: "s", Var: "v", Value: []byte("val"), DV: vec("p", 1, 5)}
	gotR, err := DecodeSharedRead(rr.Encode())
	if err != nil || gotR.Var != "v" || string(gotR.Value) != "val" || !gotR.DV.Equal(rr.DV) {
		t.Fatalf("read round trip: %+v, %v", gotR, err)
	}
	rw := SharedWrite{Session: "s", Var: "v", Value: []byte("new"), DV: vec("q", 3, 9), PrevWrite: 1234}
	gotW, err := DecodeSharedWrite(rw.Encode())
	if err != nil || gotW.PrevWrite != 1234 || string(gotW.Value) != "new" {
		t.Fatalf("write round trip: %+v, %v", gotW, err)
	}
}

func TestSessionCheckpointRoundTrip(t *testing.T) {
	r := SessionCheckpoint{
		Session:      "sess-1",
		ClientAddr:   "client-7",
		IntraDomain:  true,
		Vars:         map[string][]byte{"a": []byte("1"), "b": []byte("two")},
		HasReply:     true,
		ReplySeq:     12,
		ReplyStatus:  0,
		Reply:        []byte("reply-bytes"),
		NextExpected: 13,
		Outgoing: []OutSessionState{
			{ID: "sess-1~m1~m2", Target: "m2", NextSeq: 4},
			{ID: "sess-1~m1~m3", Target: "m3", NextSeq: 1},
		},
		DV: vec("m2", 1, 99),
	}
	got, err := DecodeSessionCheckpoint(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Vars, r.Vars) || got.NextExpected != 13 ||
		!reflect.DeepEqual(got.Outgoing, r.Outgoing) || !got.DV.Equal(r.DV) ||
		got.ReplySeq != 12 || string(got.Reply) != "reply-bytes" ||
		!got.IntraDomain || got.ClientAddr != "client-7" {
		t.Fatalf("got %+v", got)
	}
}

func TestSessionCheckpointNoReply(t *testing.T) {
	r := SessionCheckpoint{Session: "s", Vars: map[string][]byte{}, NextExpected: 1}
	got, err := DecodeSessionCheckpoint(r.Encode())
	if err != nil || got.HasReply {
		t.Fatalf("%+v %v", got, err)
	}
}

func TestSmallRecordsRoundTrip(t *testing.T) {
	if got, err := DecodeSessionStart(SessionStart{Session: "s", ClientAddr: "c", IntraDomain: true}.Encode()); err != nil || got.Session != "s" || !got.IntraDomain {
		t.Fatalf("SessionStart: %+v %v", got, err)
	}
	if got, err := DecodeSessionEnd(SessionEnd{Session: "s9"}.Encode()); err != nil || got.Session != "s9" {
		t.Fatalf("SessionEnd: %+v %v", got, err)
	}
	if got, err := DecodeEOS(EOS{Session: "s", Orphan: 777}.Encode()); err != nil || got.Orphan != 777 {
		t.Fatalf("EOS: %+v %v", got, err)
	}
	if got, err := DecodeRecoveryInfo(RecoveryInfo{Process: "p", CrashedEpoch: 3, Recovered: 555}.Encode()); err != nil || got.CrashedEpoch != 3 || got.Recovered != 555 {
		t.Fatalf("RecoveryInfo: %+v %v", got, err)
	}
	if got, err := DecodeSVCheckpoint(SVCheckpoint{Var: "v", Value: []byte("x")}.Encode()); err != nil || got.Var != "v" {
		t.Fatalf("SVCheckpoint: %+v %v", got, err)
	}
}

func TestMSPCheckpointRoundTrip(t *testing.T) {
	r := MSPCheckpoint{
		Epoch: 4,
		Knowledge: []dv.RecoveryInfo{
			{Process: "a", CrashedEpoch: 1, Recovered: 10},
			{Process: "b", CrashedEpoch: 2, Recovered: 20},
		},
		Sessions: []SessionPos{{ID: "s1", CkptLSN: 100, StartLSN: 50}},
		Shared:   []SharedPos{{Name: "v1", CkptLSN: 0, FirstWrite: 60}},
	}
	got, err := DecodeMSPCheckpoint(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("got %+v, want %+v", got, r)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	b := append(SessionEnd{Session: "s"}.Encode(), 0xFF)
	if _, err := DecodeSessionEnd(b); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := ReqReceive{Session: "session", Seq: 5, Method: "m", Arg: []byte("abcdef")}.Encode()
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeReqReceive(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Property: ReqReceive encoding round-trips for arbitrary content.
func TestReqReceiveProperty(t *testing.T) {
	prop := func(session, method string, seq uint64, arg []byte, hasDV bool, seed int64) bool {
		r := ReqReceive{Session: session, Seq: seq, Method: method, Arg: arg, HasDV: hasDV}
		if hasDV {
			rng := rand.New(rand.NewSource(seed))
			r.DV = dv.Vector{}.Set("p", dv.StateID{Epoch: uint32(rng.Intn(10)), LSN: rng.Int63n(1 << 40)})
		}
		got, err := DecodeReqReceive(r.Encode())
		if err != nil {
			return false
		}
		return got.Session == r.Session && got.Seq == r.Seq && got.Method == r.Method &&
			string(got.Arg) == string(r.Arg) && got.HasDV == r.HasDV && got.DV.Equal(r.DV)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SharedWrite round-trips, preserving the backward chain LSN.
func TestSharedWriteProperty(t *testing.T) {
	prop := func(name string, value []byte, prev int64) bool {
		r := SharedWrite{Session: "s", Var: name, Value: value, PrevWrite: wal.LSN(prev)}
		got, err := DecodeSharedWrite(r.Encode())
		return err == nil && got.Var == name && string(got.Value) == string(value) && got.PrevWrite == wal.LSN(prev)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeStrings(t *testing.T) {
	for typ := TReqReceive; typ <= TSessionStart; typ++ {
		if s := typ.String(); s == "" || s[0] == 'T' && len(s) > 4 && s[:4] == "Type" {
			t.Fatalf("type %d has no mnemonic: %q", typ, s)
		}
	}
	if Type(200).String() != "Type(200)" {
		t.Fatal("unknown type formatting")
	}
}
