// Package logrec defines the typed records an MSP writes to its single
// physical log, and their binary encodings. One record type exists for
// every source of nondeterminism the paper logs (§3): message receipts
// (requests and replies, with the sender's dependency vector when the
// message stayed inside the service domain), shared-variable reads and
// writes (value logging, Fig. 8), the three kinds of checkpoints
// (session, shared variable, fuzzy MSP checkpoint, §3.2-3.4), session
// lifecycle marks, end-of-skip (EOS) records written by orphan recovery
// (§4.1), and peer recovery information (§4.3).
package logrec

import (
	"fmt"

	"mspr/internal/dv"
	"mspr/internal/wal"
)

// Type tags a log record. Type 0 is reserved by the WAL for padding.
type Type byte

// Log record types.
const (
	TReqReceive    Type = 1  // a request arrived on a session
	TReplyReceive  Type = 2  // a reply arrived on an outgoing session
	TSharedRead    Type = 3  // a session read a shared variable (value logged)
	TSharedWrite   Type = 4  // a session wrote a shared variable (chained)
	TSVCheckpoint  Type = 5  // shared-variable checkpoint (breaks the chain)
	TSessionCkpt   Type = 6  // session checkpoint
	TSessionEnd    Type = 7  // session ended; its log records are dead
	TEOS           Type = 8  // end-of-skip marker written by orphan recovery
	TRecoveryInfo  Type = 9  // a peer's broadcast recovered state number
	TMSPCheckpoint Type = 10 // fuzzy MSP checkpoint
	TSessionStart  Type = 11 // a session was created
)

// String returns a short mnemonic for the record type.
func (t Type) String() string {
	switch t {
	case TReqReceive:
		return "ReqReceive"
	case TReplyReceive:
		return "ReplyReceive"
	case TSharedRead:
		return "SharedRead"
	case TSharedWrite:
		return "SharedWrite"
	case TSVCheckpoint:
		return "SVCheckpoint"
	case TSessionCkpt:
		return "SessionCkpt"
	case TSessionEnd:
		return "SessionEnd"
	case TEOS:
		return "EOS"
	case TRecoveryInfo:
		return "RecoveryInfo"
	case TMSPCheckpoint:
		return "MSPCheckpoint"
	case TSessionStart:
		return "SessionStart"
	}
	return fmt.Sprintf("Type(%d)", byte(t))
}

// ReqReceive records the receipt of a request over a session. For
// intra-domain senders the sender session's dependency vector is attached
// (Fig. 7); requests from end clients or across domains carry none.
type ReqReceive struct {
	Session string
	Seq     uint64
	Method  string
	Arg     []byte
	HasDV   bool
	DV      dv.Vector
}

// Encode serializes the record payload.
func (r ReqReceive) Encode() []byte {
	e := newEnc()
	e.str(r.Session)
	e.u64(r.Seq)
	e.str(r.Method)
	e.bytes(r.Arg)
	e.boolv(r.HasDV)
	if r.HasDV {
		e.vec(r.DV)
	}
	return e.b
}

// DecodeReqReceive parses a TReqReceive payload.
func DecodeReqReceive(p []byte) (ReqReceive, error) {
	d := dec{b: p}
	var r ReqReceive
	r.Session = d.str()
	r.Seq = d.u64()
	r.Method = d.str()
	r.Arg = d.bytes()
	r.HasDV = d.boolv()
	if r.HasDV {
		r.DV = d.vec()
	}
	return r, d.done("ReqReceive")
}

// ReplyReceive records the receipt of a reply on an outgoing session
// (OutSession) owned by Session. Status carries the application-level
// result kind so replay reproduces errors as faithfully as successes.
type ReplyReceive struct {
	Session    string
	OutSession string
	Seq        uint64
	Status     byte
	Reply      []byte
	HasDV      bool
	DV         dv.Vector
}

// Encode serializes the record payload.
func (r ReplyReceive) Encode() []byte {
	e := newEnc()
	e.str(r.Session)
	e.str(r.OutSession)
	e.u64(r.Seq)
	e.u8(r.Status)
	e.bytes(r.Reply)
	e.boolv(r.HasDV)
	if r.HasDV {
		e.vec(r.DV)
	}
	return e.b
}

// DecodeReplyReceive parses a TReplyReceive payload.
func DecodeReplyReceive(p []byte) (ReplyReceive, error) {
	d := dec{b: p}
	var r ReplyReceive
	r.Session = d.str()
	r.OutSession = d.str()
	r.Seq = d.u64()
	r.Status = d.u8()
	r.Reply = d.bytes()
	r.HasDV = d.boolv()
	if r.HasDV {
		r.DV = d.vec()
	}
	return r, d.done("ReplyReceive")
}

// SharedRead records a session reading a shared variable: the value and
// the variable's DV are logged so a recovering reader obtains the value
// from the log without involving the writer (value logging, §3.3).
type SharedRead struct {
	Session string
	Var     string
	Value   []byte
	DV      dv.Vector
}

// Encode serializes the record payload.
func (r SharedRead) Encode() []byte {
	e := newEnc()
	e.str(r.Session)
	e.str(r.Var)
	e.bytes(r.Value)
	e.vec(r.DV)
	return e.b
}

// DecodeSharedRead parses a TSharedRead payload.
func DecodeSharedRead(p []byte) (SharedRead, error) {
	d := dec{b: p}
	var r SharedRead
	r.Session = d.str()
	r.Var = d.str()
	r.Value = d.bytes()
	r.DV = d.vec()
	return r, d.done("SharedRead")
}

// SharedWrite records a session writing a shared variable: the new value,
// the writer session's DV, and the LSN of the previous write record for
// the same variable — the backward chain followed by shared-state orphan
// recovery (§4.2). PrevWrite may point at a TSVCheckpoint, where the
// chain breaks.
type SharedWrite struct {
	Session   string
	Var       string
	Value     []byte
	DV        dv.Vector
	PrevWrite wal.LSN
}

// Encode serializes the record payload.
func (r SharedWrite) Encode() []byte {
	e := newEnc()
	e.str(r.Session)
	e.str(r.Var)
	e.bytes(r.Value)
	e.vec(r.DV)
	e.i64(int64(r.PrevWrite))
	return e.b
}

// DecodeSharedWrite parses a TSharedWrite payload.
func DecodeSharedWrite(p []byte) (SharedWrite, error) {
	d := dec{b: p}
	var r SharedWrite
	r.Session = d.str()
	r.Var = d.str()
	r.Value = d.bytes()
	r.DV = d.vec()
	r.PrevWrite = wal.LSN(d.i64())
	return r, d.done("SharedWrite")
}

// SVCheckpoint records a shared-variable checkpoint. The checkpointed
// value can never be an orphan (a distributed log flush per the
// variable's DV precedes it), so the backward chain breaks here (Fig. 9).
type SVCheckpoint struct {
	Var   string
	Value []byte
}

// Encode serializes the record payload.
func (r SVCheckpoint) Encode() []byte {
	e := newEnc()
	e.str(r.Var)
	e.bytes(r.Value)
	return e.b
}

// DecodeSVCheckpoint parses a TSVCheckpoint payload.
func DecodeSVCheckpoint(p []byte) (SVCheckpoint, error) {
	d := dec{b: p}
	var r SVCheckpoint
	r.Var = d.str()
	r.Value = d.bytes()
	return r, d.done("SVCheckpoint")
}

// OutSessionState is the recovery-relevant state of one outgoing session,
// embedded in a session checkpoint: the next available request sequence
// number (§3.2).
type OutSessionState struct {
	ID      string
	Target  string
	NextSeq uint64
}

// SessionCheckpoint records everything needed to re-initialize a session:
// its session variables, the buffered latest reply, the next expected
// request sequence number, every outgoing session's next available
// sequence number, and the session's DV. It deliberately contains no
// control state (stacks, program counters) — checkpoints are taken only
// between requests (§3.2).
type SessionCheckpoint struct {
	Session      string
	ClientAddr   string
	IntraDomain  bool
	Vars         map[string][]byte
	HasReply     bool
	ReplySeq     uint64
	ReplyStatus  byte
	Reply        []byte
	NextExpected uint64
	Outgoing     []OutSessionState
	DV           dv.Vector
}

// Encode serializes the record payload.
func (r SessionCheckpoint) Encode() []byte {
	e := newEnc()
	e.str(r.Session)
	e.str(r.ClientAddr)
	e.boolv(r.IntraDomain)
	e.strmap(r.Vars)
	e.boolv(r.HasReply)
	if r.HasReply {
		e.u64(r.ReplySeq)
		e.u8(r.ReplyStatus)
		e.bytes(r.Reply)
	}
	e.u64(r.NextExpected)
	e.u64(uint64(len(r.Outgoing)))
	for _, o := range r.Outgoing {
		e.str(o.ID)
		e.str(o.Target)
		e.u64(o.NextSeq)
	}
	e.vec(r.DV)
	return e.b
}

// DecodeSessionCheckpoint parses a TSessionCkpt payload.
func DecodeSessionCheckpoint(p []byte) (SessionCheckpoint, error) {
	d := dec{b: p}
	var r SessionCheckpoint
	r.Session = d.str()
	r.ClientAddr = d.str()
	r.IntraDomain = d.boolv()
	r.Vars = d.strmap()
	r.HasReply = d.boolv()
	if r.HasReply {
		r.ReplySeq = d.u64()
		r.ReplyStatus = d.u8()
		r.Reply = d.bytes()
	}
	r.NextExpected = d.u64()
	n := d.u64()
	for i := uint64(0); i < n && d.err == nil; i++ {
		var o OutSessionState
		o.ID = d.str()
		o.Target = d.str()
		o.NextSeq = d.u64()
		r.Outgoing = append(r.Outgoing, o)
	}
	r.DV = d.vec()
	return r, d.done("SessionCheckpoint")
}

// SessionStart records the creation of a session, so crash recovery can
// rebuild the session shell even before its first checkpoint.
type SessionStart struct {
	Session     string
	ClientAddr  string
	IntraDomain bool
}

// Encode serializes the record payload.
func (r SessionStart) Encode() []byte {
	e := newEnc()
	e.str(r.Session)
	e.str(r.ClientAddr)
	e.boolv(r.IntraDomain)
	return e.b
}

// DecodeSessionStart parses a TSessionStart payload.
func DecodeSessionStart(p []byte) (SessionStart, error) {
	d := dec{b: p}
	var r SessionStart
	r.Session = d.str()
	r.ClientAddr = d.str()
	r.IntraDomain = d.boolv()
	return r, d.done("SessionStart")
}

// SessionEnd marks the end of a session; its position stream is discarded
// and its earlier log records become dead (§3.2).
type SessionEnd struct {
	Session string
}

// Encode serializes the record payload.
func (r SessionEnd) Encode() []byte {
	e := newEnc()
	e.str(r.Session)
	return e.b
}

// DecodeSessionEnd parses a TSessionEnd payload.
func DecodeSessionEnd(p []byte) (SessionEnd, error) {
	d := dec{b: p}
	var r SessionEnd
	r.Session = d.str()
	return r, d.done("SessionEnd")
}

// EOS (end-of-skip) is written when session orphan recovery terminates:
// it points back at the orphan log record where replay stopped. Log
// records in [Orphan, EOS] are invisible to any future recovery of the
// session (§4.1).
type EOS struct {
	Session string
	Orphan  wal.LSN
}

// Encode serializes the record payload.
func (r EOS) Encode() []byte {
	e := newEnc()
	e.str(r.Session)
	e.i64(int64(r.Orphan))
	return e.b
}

// DecodeEOS parses a TEOS payload.
func DecodeEOS(p []byte) (EOS, error) {
	d := dec{b: p}
	var r EOS
	r.Session = d.str()
	r.Orphan = wal.LSN(d.i64())
	return r, d.done("EOS")
}

// PeekSession returns the leading session ID of a payload without
// decoding the rest of the record. Every session-owned record type
// (TReqReceive, TReplyReceive, TSharedRead, TSharedWrite, TSessionCkpt,
// TSessionStart, TSessionEnd, TEOS) encodes Session as its first field
// precisely so the crash-recovery analysis scan can route the record to
// its position stream without materializing values, vectors or variable
// maps.
func PeekSession(p []byte) (string, error) {
	d := dec{b: p}
	s := d.str()
	return s, d.err
}

// PeekSessionVar returns the leading (Session, Var) pair of a
// TSharedWrite or TSharedRead payload — the two routing keys the
// analysis scan needs — without decoding the value or the DV.
func PeekSessionVar(p []byte) (session, name string, err error) {
	d := dec{b: p}
	session = d.str()
	name = d.str()
	return session, name, d.err
}

// PeekVar returns the leading variable name of a TSVCheckpoint payload
// without decoding the checkpointed value.
func PeekVar(p []byte) (string, error) {
	d := dec{b: p}
	s := d.str()
	return s, d.err
}

// RecoveryInfo records a peer's broadcast recovery message so that the
// MSP's knowledge of recovered state numbers survives its own crash.
type RecoveryInfo struct {
	Process      string
	CrashedEpoch uint32
	Recovered    wal.LSN
}

// Encode serializes the record payload.
func (r RecoveryInfo) Encode() []byte {
	e := newEnc()
	e.str(r.Process)
	e.u32(r.CrashedEpoch)
	e.i64(int64(r.Recovered))
	return e.b
}

// DecodeRecoveryInfo parses a TRecoveryInfo payload.
func DecodeRecoveryInfo(p []byte) (RecoveryInfo, error) {
	d := dec{b: p}
	var r RecoveryInfo
	r.Process = d.str()
	r.CrashedEpoch = d.u32()
	r.Recovered = wal.LSN(d.i64())
	return r, d.done("RecoveryInfo")
}

// SessionPos locates one session's recovery starting point inside an MSP
// checkpoint: its most recent session checkpoint (0 if none yet) and the
// LSN of its first log record.
type SessionPos struct {
	ID       string
	CkptLSN  wal.LSN
	StartLSN wal.LSN
}

// SharedPos locates one shared variable's recovery starting point: its
// most recent checkpoint (0 if none) and its first write record (0 if
// never written).
type SharedPos struct {
	Name       string
	CkptLSN    wal.LSN
	FirstWrite wal.LSN
}

// MSPCheckpoint is the fuzzy MSP checkpoint (§3.4): recovered state
// numbers of peers in the service domain, plus the most recent checkpoint
// LSN of every session and shared variable. The minimum over all those
// positions is where the crash-recovery analysis scan starts.
type MSPCheckpoint struct {
	Epoch     uint32
	Knowledge []dv.RecoveryInfo
	Sessions  []SessionPos
	Shared    []SharedPos
}

// Encode serializes the record payload.
func (r MSPCheckpoint) Encode() []byte {
	e := newEnc()
	e.u32(r.Epoch)
	e.u64(uint64(len(r.Knowledge)))
	for _, k := range r.Knowledge {
		e.str(string(k.Process))
		e.u32(k.CrashedEpoch)
		e.i64(k.Recovered)
	}
	e.u64(uint64(len(r.Sessions)))
	for _, s := range r.Sessions {
		e.str(s.ID)
		e.i64(int64(s.CkptLSN))
		e.i64(int64(s.StartLSN))
	}
	e.u64(uint64(len(r.Shared)))
	for _, s := range r.Shared {
		e.str(s.Name)
		e.i64(int64(s.CkptLSN))
		e.i64(int64(s.FirstWrite))
	}
	return e.b
}

// DecodeMSPCheckpoint parses a TMSPCheckpoint payload.
func DecodeMSPCheckpoint(p []byte) (MSPCheckpoint, error) {
	d := dec{b: p}
	var r MSPCheckpoint
	r.Epoch = d.u32()
	n := d.u64()
	for i := uint64(0); i < n && d.err == nil; i++ {
		var k dv.RecoveryInfo
		k.Process = dv.ProcessID(d.str())
		k.CrashedEpoch = d.u32()
		k.Recovered = d.i64()
		r.Knowledge = append(r.Knowledge, k)
	}
	n = d.u64()
	for i := uint64(0); i < n && d.err == nil; i++ {
		var s SessionPos
		s.ID = d.str()
		s.CkptLSN = wal.LSN(d.i64())
		s.StartLSN = wal.LSN(d.i64())
		r.Sessions = append(r.Sessions, s)
	}
	n = d.u64()
	for i := uint64(0); i < n && d.err == nil; i++ {
		var s SharedPos
		s.Name = d.str()
		s.CkptLSN = wal.LSN(d.i64())
		s.FirstWrite = wal.LSN(d.i64())
		r.Shared = append(r.Shared, s)
	}
	return r, d.done("MSPCheckpoint")
}
