package simnet

import (
	"testing"
	"time"
)

func recvOne(t *testing.T, ep *Endpoint) Message {
	t.Helper()
	select {
	case m := <-ep.Recv():
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
		return Message{}
	}
}

func TestDelivery(t *testing.T) {
	n := New(Config{})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", "hello")
	m := recvOne(t, b)
	if m.From != "a" || m.To != "b" || m.Payload != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestSendToUnknownAddressDropped(t *testing.T) {
	n := New(Config{})
	a := n.Endpoint("a")
	a.Send("ghost", "x") // must not panic or block
}

func TestDownEndpointDropsDeliveries(t *testing.T) {
	n := New(Config{})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	b.SetDown(true)
	a.Send("b", 1)
	time.Sleep(10 * time.Millisecond)
	b.SetDown(false)
	a.Send("b", 2)
	m := recvOne(t, b)
	if m.Payload != 2 {
		t.Fatalf("delivery while down leaked: %v", m.Payload)
	}
}

func TestSetDownDrainsInbox(t *testing.T) {
	n := New(Config{})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", 1)
	time.Sleep(10 * time.Millisecond)
	b.SetDown(true)
	b.SetDown(false)
	select {
	case m := <-b.Recv():
		t.Fatalf("message %v survived the crash", m.Payload)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestLossRate(t *testing.T) {
	n := New(Config{LossRate: 1.0, Seed: 7})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", "x")
	select {
	case <-b.Recv():
		t.Fatal("message delivered despite 100% loss")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestDuplication(t *testing.T) {
	n := New(Config{DupRate: 1.0, Seed: 7})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", "x")
	recvOne(t, b)
	recvOne(t, b) // the duplicate
}

func TestLatencyScaling(t *testing.T) {
	n := New(Config{OneWay: 10 * time.Millisecond, TimeScale: 1.0})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	start := time.Now()
	a.Send("b", "x")
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("delivery after %v, want ≥ ~10 ms", elapsed)
	}
}

func TestPerLinkLatencyOverride(t *testing.T) {
	n := New(Config{OneWay: 50 * time.Millisecond, TimeScale: 1.0})
	n.SetLinkLatency("a", "b", 0)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	start := time.Now()
	a.Send("b", "x")
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("override ignored: delivery after %v", elapsed)
	}
}

func TestZeroScaleIsInstant(t *testing.T) {
	n := New(Config{OneWay: time.Hour, TimeScale: 0})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", "x")
	recvOne(t, b)
}

func TestEndpointIdentity(t *testing.T) {
	n := New(Config{})
	if n.Endpoint("a") != n.Endpoint("a") {
		t.Fatal("Endpoint should be idempotent")
	}
}

func TestManyMessagesOrderedOnReliableInstantNetwork(t *testing.T) {
	n := New(Config{})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	for i := 0; i < 100; i++ {
		a.Send("b", i)
	}
	for i := 0; i < 100; i++ {
		m := recvOne(t, b)
		if m.Payload != i {
			t.Fatalf("message %d arrived as %v", i, m.Payload)
		}
	}
}

func expectNone(t *testing.T, ep *Endpoint, within time.Duration) {
	t.Helper()
	select {
	case m := <-ep.Recv():
		t.Fatalf("unexpected delivery %v from %s", m.Payload, m.From)
	case <-time.After(within):
	}
}

func TestPartitionSplitsNamedGroupsOnly(t *testing.T) {
	n := New(Config{})
	a, b, c := n.Endpoint("a"), n.Endpoint("b"), n.Endpoint("c")
	n.Partition([]Addr{"a"}, []Addr{"b"})
	if !n.Partitioned() {
		t.Fatal("Partitioned() false after Partition")
	}
	a.Send("b", 1) // cut
	b.Send("a", 2) // cut
	c.Send("a", 3) // c is unnamed: keeps reaching both sides
	c.Send("b", 4)
	a.Send("c", 5)
	if m := recvOne(t, a); m.Payload != 3 {
		t.Fatalf("a got %v, want 3", m.Payload)
	}
	if m := recvOne(t, b); m.Payload != 4 {
		t.Fatalf("b got %v, want 4", m.Payload)
	}
	if m := recvOne(t, c); m.Payload != 5 {
		t.Fatalf("c got %v, want 5", m.Payload)
	}
	expectNone(t, a, 20*time.Millisecond)
	expectNone(t, b, 20*time.Millisecond)
	n.Heal()
	if n.Partitioned() {
		t.Fatal("Partitioned() true after Heal")
	}
	a.Send("b", 6)
	if m := recvOne(t, b); m.Payload != 6 {
		t.Fatalf("post-heal b got %v, want 6", m.Payload)
	}
}

func TestPartitionSameGroupDelivers(t *testing.T) {
	n := New(Config{})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.Partition([]Addr{"a", "b"}, []Addr{"x"})
	a.Send("b", 7)
	if m := recvOne(t, b); m.Payload != 7 {
		t.Fatalf("same-group delivery got %v, want 7", m.Payload)
	}
	n.Heal()
}

func TestLinkFaultBlockedIsDirectional(t *testing.T) {
	n := New(Config{})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetLinkFaults("a", "b", LinkFaults{Blocked: true})
	a.Send("b", 1) // blocked direction
	b.Send("a", 2) // reverse direction untouched
	if m := recvOne(t, a); m.Payload != 2 {
		t.Fatalf("a got %v, want 2", m.Payload)
	}
	expectNone(t, b, 20*time.Millisecond)
	n.ClearLinkFaults("a", "b")
	a.Send("b", 3)
	if m := recvOne(t, b); m.Payload != 3 {
		t.Fatalf("post-clear b got %v, want 3", m.Payload)
	}
}

func TestLinkFaultLossAndDupOverrideGlobal(t *testing.T) {
	// Global network is perfectly reliable; the a→b override loses
	// everything and the b→a override duplicates everything.
	n := New(Config{Seed: 11})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetLinkFaults("a", "b", LinkFaults{LossRate: 1})
	n.SetLinkFaults("b", "a", LinkFaults{DupRate: 1})
	for i := 0; i < 10; i++ {
		a.Send("b", i)
	}
	expectNone(t, b, 20*time.Millisecond)
	b.Send("a", 42)
	if m := recvOne(t, a); m.Payload != 42 {
		t.Fatalf("a got %v, want 42", m.Payload)
	}
	if m := recvOne(t, a); m.Payload != 42 {
		t.Fatalf("a got %v, want duplicated 42", m.Payload)
	}
	n.ClearAllLinkFaults()
	a.Send("b", 99)
	if m := recvOne(t, b); m.Payload != 99 {
		t.Fatalf("post-clear b got %v, want 99", m.Payload)
	}
}

func TestLinkFaultExtraDelay(t *testing.T) {
	n := New(Config{TimeScale: 1.0})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	n.SetLinkFaults("a", "b", LinkFaults{ExtraDelay: 60 * time.Millisecond})
	start := time.Now()
	a.Send("b", 1)
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("ExtraDelay ignored: delivery after %v", elapsed)
	}
}
