package simnet

import (
	"testing"
	"time"
)

func recvOne(t *testing.T, ep *Endpoint) Message {
	t.Helper()
	select {
	case m := <-ep.Recv():
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
		return Message{}
	}
}

func TestDelivery(t *testing.T) {
	n := New(Config{})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", "hello")
	m := recvOne(t, b)
	if m.From != "a" || m.To != "b" || m.Payload != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestSendToUnknownAddressDropped(t *testing.T) {
	n := New(Config{})
	a := n.Endpoint("a")
	a.Send("ghost", "x") // must not panic or block
}

func TestDownEndpointDropsDeliveries(t *testing.T) {
	n := New(Config{})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	b.SetDown(true)
	a.Send("b", 1)
	time.Sleep(10 * time.Millisecond)
	b.SetDown(false)
	a.Send("b", 2)
	m := recvOne(t, b)
	if m.Payload != 2 {
		t.Fatalf("delivery while down leaked: %v", m.Payload)
	}
}

func TestSetDownDrainsInbox(t *testing.T) {
	n := New(Config{})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", 1)
	time.Sleep(10 * time.Millisecond)
	b.SetDown(true)
	b.SetDown(false)
	select {
	case m := <-b.Recv():
		t.Fatalf("message %v survived the crash", m.Payload)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestLossRate(t *testing.T) {
	n := New(Config{LossRate: 1.0, Seed: 7})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", "x")
	select {
	case <-b.Recv():
		t.Fatal("message delivered despite 100% loss")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestDuplication(t *testing.T) {
	n := New(Config{DupRate: 1.0, Seed: 7})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", "x")
	recvOne(t, b)
	recvOne(t, b) // the duplicate
}

func TestLatencyScaling(t *testing.T) {
	n := New(Config{OneWay: 10 * time.Millisecond, TimeScale: 1.0})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	start := time.Now()
	a.Send("b", "x")
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("delivery after %v, want ≥ ~10 ms", elapsed)
	}
}

func TestPerLinkLatencyOverride(t *testing.T) {
	n := New(Config{OneWay: 50 * time.Millisecond, TimeScale: 1.0})
	n.SetLinkLatency("a", "b", 0)
	a, b := n.Endpoint("a"), n.Endpoint("b")
	start := time.Now()
	a.Send("b", "x")
	recvOne(t, b)
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("override ignored: delivery after %v", elapsed)
	}
}

func TestZeroScaleIsInstant(t *testing.T) {
	n := New(Config{OneWay: time.Hour, TimeScale: 0})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	a.Send("b", "x")
	recvOne(t, b)
}

func TestEndpointIdentity(t *testing.T) {
	n := New(Config{})
	if n.Endpoint("a") != n.Endpoint("a") {
		t.Fatal("Endpoint should be idempotent")
	}
}

func TestManyMessagesOrderedOnReliableInstantNetwork(t *testing.T) {
	n := New(Config{})
	a, b := n.Endpoint("a"), n.Endpoint("b")
	for i := 0; i < 100; i++ {
		a.Send("b", i)
	}
	for i := 0; i < 100; i++ {
		m := recvOne(t, b)
		if m.Payload != i {
			t.Fatalf("message %d arrived as %v", i, m.Payload)
		}
	}
}
