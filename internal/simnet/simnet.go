// Package simnet simulates the network of the paper's experimental setup
// (§2.1, §5.1): message communication between a client and an MSP is
// unreliable — messages may arrive out of order, be duplicated, or get
// lost — while MSPs inside a service domain enjoy fast, reliable links.
//
// The network is in-process: endpoints exchange messages through buffered
// channels, with a configurable one-way latency (scaled by TimeScale like
// every other model latency), optional random loss/duplication, and
// optional reordering jitter. A crashed process marks its endpoint down;
// messages delivered to a down endpoint vanish, exactly like packets sent
// to a dead machine.
package simnet

import (
	"math/rand"
	"sync"
	"time"

	"mspr/internal/simtime"
)

// Addr identifies an endpoint on the network.
type Addr string

// Message is a delivered network message. Payload is an arbitrary value;
// higher layers define envelope types (see internal/rpc).
type Message struct {
	From    Addr
	To      Addr
	Payload any
}

// Config describes the network's behaviour. The zero value is a reliable,
// zero-latency network.
type Config struct {
	// OneWay is the default one-way message latency (model time). The
	// paper measures MSP↔MSP round trips of 3.596 ms and client↔MSP round
	// trips of 3.9 ms; per-link overrides set those precisely.
	OneWay time.Duration
	// TimeScale multiplies every latency before sleeping (0 disables).
	TimeScale float64
	// LossRate is the probability a message is silently dropped.
	LossRate float64
	// DupRate is the probability a message is delivered twice.
	DupRate float64
	// ReorderJitter adds a uniform random extra delay in [0, ReorderJitter)
	// to each delivery, which reorders closely spaced messages.
	ReorderJitter time.Duration
	// Seed seeds the fault-injection RNG (0 means a fixed default).
	Seed int64
}

// Network is a set of endpoints sharing one fault/latency model.
type Network struct {
	cfg Config

	mu    sync.Mutex
	eps   map[Addr]*Endpoint
	links map[[2]Addr]time.Duration
	rng   *rand.Rand
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		cfg:   cfg,
		eps:   make(map[Addr]*Endpoint),
		links: make(map[[2]Addr]time.Duration),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// SetLinkLatency overrides the one-way latency between a and b (both
// directions).
func (n *Network) SetLinkLatency(a, b Addr, oneWay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]Addr{a, b}] = oneWay
	n.links[[2]Addr{b, a}] = oneWay
}

func (n *Network) latency(from, to Addr) time.Duration {
	if d, ok := n.links[[2]Addr{from, to}]; ok {
		return d
	}
	return n.cfg.OneWay
}

// Endpoint returns (creating if needed) the endpoint at addr.
func (n *Network) Endpoint(addr Addr) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.eps[addr]
	if !ok {
		ep = &Endpoint{
			addr:  addr,
			net:   n,
			inbox: make(chan Message, 4096),
		}
		n.eps[addr] = ep
	}
	return ep
}

// send schedules delivery of a message, applying loss, duplication,
// latency and jitter.
func (n *Network) send(m Message) {
	n.mu.Lock()
	dst, ok := n.eps[m.To]
	if !ok {
		n.mu.Unlock()
		return
	}
	lat := n.latency(m.From, m.To)
	copies := 1
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		copies = 0
	} else if n.cfg.DupRate > 0 && n.rng.Float64() < n.cfg.DupRate {
		copies = 2
	}
	delays := make([]time.Duration, copies)
	for i := range delays {
		d := lat
		if n.cfg.ReorderJitter > 0 {
			d += time.Duration(n.rng.Int63n(int64(n.cfg.ReorderJitter)))
		}
		delays[i] = time.Duration(float64(d) * n.cfg.TimeScale)
	}
	n.mu.Unlock()

	for _, d := range delays {
		if d <= 0 {
			dst.deliver(m)
			continue
		}
		simtime.After(d, func() { dst.deliver(m) })
	}
}

// Endpoint is one process's attachment to the network.
type Endpoint struct {
	addr  Addr
	net   *Network
	inbox chan Message

	mu   sync.Mutex
	down bool
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Send transmits payload to addr. Delivery is asynchronous and, depending
// on the network configuration, unreliable.
func (e *Endpoint) Send(to Addr, payload any) {
	e.net.send(Message{From: e.addr, To: to, Payload: payload})
}

// Recv returns the channel on which delivered messages arrive.
func (e *Endpoint) Recv() <-chan Message { return e.inbox }

// SetDown marks the endpoint down (crashed). While down, deliveries are
// discarded. Bringing the endpoint back up starts with an empty inbox of
// in-flight messages only (messages that arrived while down are lost).
func (e *Endpoint) SetDown(down bool) {
	e.mu.Lock()
	e.down = down
	if down {
		// Drain anything already queued; a crashed process loses it.
		for {
			select {
			case <-e.inbox:
			default:
				e.mu.Unlock()
				return
			}
		}
	}
	e.mu.Unlock()
}

// Down reports whether the endpoint is marked down.
func (e *Endpoint) Down() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.down
}

func (e *Endpoint) deliver(m Message) {
	e.mu.Lock()
	down := e.down
	e.mu.Unlock()
	if down {
		return
	}
	select {
	case e.inbox <- m:
	default:
		// Inbox overflow models a dropped packet.
	}
}
