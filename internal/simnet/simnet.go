// Package simnet simulates the network of the paper's experimental setup
// (§2.1, §5.1): message communication between a client and an MSP is
// unreliable — messages may arrive out of order, be duplicated, or get
// lost — while MSPs inside a service domain enjoy fast, reliable links.
//
// The network is in-process: endpoints exchange messages through buffered
// channels, with a configurable one-way latency (scaled by TimeScale like
// every other model latency), optional random loss/duplication, and
// optional reordering jitter. A crashed process marks its endpoint down;
// messages delivered to a down endpoint vanish, exactly like packets sent
// to a dead machine.
package simnet

import (
	"math/rand"
	"sync"
	"time"

	"mspr/internal/metrics"
	"mspr/internal/simtime"
)

// Addr identifies an endpoint on the network.
type Addr string

// Message is a delivered network message. Payload is an arbitrary value;
// higher layers define envelope types (see internal/rpc).
type Message struct {
	From    Addr
	To      Addr
	Payload any
}

// Config describes the network's behaviour. The zero value is a reliable,
// zero-latency network.
type Config struct {
	// OneWay is the default one-way message latency (model time). The
	// paper measures MSP↔MSP round trips of 3.596 ms and client↔MSP round
	// trips of 3.9 ms; per-link overrides set those precisely.
	OneWay time.Duration
	// TimeScale multiplies every latency before sleeping (0 disables).
	TimeScale float64
	// LossRate is the probability a message is silently dropped.
	LossRate float64
	// DupRate is the probability a message is delivered twice.
	DupRate float64
	// ReorderJitter adds a uniform random extra delay in [0, ReorderJitter)
	// to each delivery, which reorders closely spaced messages.
	ReorderJitter time.Duration
	// Seed seeds the fault-injection RNG (0 means a fixed default).
	Seed int64
}

// LinkFaults overrides the network-wide fault model for one *directed*
// link. A link with an entry uses the entry's loss/dup rates instead of
// the global ones, adds ExtraDelay to the latency, and drops everything
// when Blocked. Because entries are directional, asymmetric (gray)
// failures — A reaches B but B's replies vanish — are expressed by
// setting faults on one direction only.
type LinkFaults struct {
	// LossRate replaces the global loss probability on this link.
	LossRate float64
	// DupRate replaces the global duplication probability on this link.
	DupRate float64
	// ExtraDelay is added to the link's one-way latency.
	ExtraDelay time.Duration
	// Blocked drops every message on this link.
	Blocked bool
}

// Network is a set of endpoints sharing one fault/latency model. Beyond
// the static Config, the network is a runtime-mutable fault plane:
// Partition/Heal split and rejoin endpoint groups, and SetLinkFaults
// installs per-link, per-direction loss/dup/delay/block overrides.
type Network struct {
	cfg Config

	mu    sync.Mutex
	eps   map[Addr]*Endpoint
	links map[[2]Addr]time.Duration
	lf    map[[2]Addr]LinkFaults
	part  map[Addr]int // partition group per addr; absent = reaches everyone
	rng   *rand.Rand
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Network{
		cfg:   cfg,
		eps:   make(map[Addr]*Endpoint),
		links: make(map[[2]Addr]time.Duration),
		lf:    make(map[[2]Addr]LinkFaults),
		part:  make(map[Addr]int),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Partition splits the named addresses into isolated groups: a message
// between addresses in different groups is dropped. Addresses not named
// in any group keep reaching everyone (so end clients can stay connected
// while a service domain is split). Partition replaces any previous
// partition; Heal removes it.
func (n *Network) Partition(groups ...[]Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.part = make(map[Addr]int)
	for g, addrs := range groups {
		for _, a := range addrs {
			n.part[a] = g
		}
	}
}

// Heal removes the current partition. Per-link fault overrides are not
// touched; clear those with ClearLinkFaults/ClearAllLinkFaults.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.part = make(map[Addr]int)
}

// Partitioned reports whether a partition is currently in force.
func (n *Network) Partitioned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.part) > 0
}

// SetLinkFaults installs a fault override on the directed link from→to.
// Call it twice (swapping from/to) for a symmetric fault.
func (n *Network) SetLinkFaults(from, to Addr, f LinkFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lf[[2]Addr{from, to}] = f
}

// ClearLinkFaults removes the override on the directed link from→to.
func (n *Network) ClearLinkFaults(from, to Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.lf, [2]Addr{from, to})
}

// ClearAllLinkFaults removes every per-link override.
func (n *Network) ClearAllLinkFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lf = make(map[[2]Addr]LinkFaults)
}

// SetLinkLatency overrides the one-way latency between a and b (both
// directions).
func (n *Network) SetLinkLatency(a, b Addr, oneWay time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]Addr{a, b}] = oneWay
	n.links[[2]Addr{b, a}] = oneWay
}

func (n *Network) latency(from, to Addr) time.Duration {
	if d, ok := n.links[[2]Addr{from, to}]; ok {
		return d
	}
	return n.cfg.OneWay
}

// Endpoint returns (creating if needed) the endpoint at addr.
func (n *Network) Endpoint(addr Addr) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.eps[addr]
	if !ok {
		ep = &Endpoint{
			addr:  addr,
			net:   n,
			inbox: make(chan Message, 4096),
		}
		n.eps[addr] = ep
	}
	return ep
}

// send schedules delivery of a message, applying the partition, the
// link's fault override (or the global loss/duplication rates), latency
// and jitter.
func (n *Network) send(m Message) {
	n.mu.Lock()
	dst, ok := n.eps[m.To]
	if !ok {
		n.mu.Unlock()
		return
	}
	if gf, okF := n.part[m.From]; okF {
		if gt, okT := n.part[m.To]; okT && gf != gt {
			n.mu.Unlock()
			metrics.Net.PartitionDrops.Inc()
			return
		}
	}
	lat := n.latency(m.From, m.To)
	loss, dup := n.cfg.LossRate, n.cfg.DupRate
	if f, okL := n.lf[[2]Addr{m.From, m.To}]; okL {
		if f.Blocked {
			n.mu.Unlock()
			metrics.Net.BlockedDrops.Inc()
			return
		}
		loss, dup = f.LossRate, f.DupRate
		lat += f.ExtraDelay
	}
	copies := 1
	if loss > 0 && n.rng.Float64() < loss {
		copies = 0
		metrics.Net.LossDrops.Inc()
	} else if dup > 0 && n.rng.Float64() < dup {
		copies = 2
	}
	delays := make([]time.Duration, copies)
	for i := range delays {
		d := lat
		if n.cfg.ReorderJitter > 0 {
			d += time.Duration(n.rng.Int63n(int64(n.cfg.ReorderJitter)))
		}
		delays[i] = time.Duration(float64(d) * n.cfg.TimeScale)
	}
	n.mu.Unlock()

	for _, d := range delays {
		if d <= 0 {
			dst.deliver(m)
			continue
		}
		simtime.After(d, func() { dst.deliver(m) })
	}
}

// Endpoint is one process's attachment to the network.
type Endpoint struct {
	addr  Addr
	net   *Network
	inbox chan Message

	mu   sync.Mutex
	down bool
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Send transmits payload to addr. Delivery is asynchronous and, depending
// on the network configuration, unreliable.
//
//mspr:blocking may stall on the simulated network's delivery machinery
func (e *Endpoint) Send(to Addr, payload any) {
	e.net.send(Message{From: e.addr, To: to, Payload: payload})
}

// Recv returns the channel on which delivered messages arrive.
func (e *Endpoint) Recv() <-chan Message { return e.inbox }

// SetDown marks the endpoint down (crashed). While down, deliveries are
// discarded. Bringing the endpoint back up starts with an empty inbox of
// in-flight messages only (messages that arrived while down are lost).
func (e *Endpoint) SetDown(down bool) {
	e.mu.Lock()
	e.down = down
	if down {
		// Drain anything already queued; a crashed process loses it.
		for {
			select {
			case <-e.inbox:
			default:
				e.mu.Unlock()
				return
			}
		}
	}
	e.mu.Unlock()
}

// Down reports whether the endpoint is marked down.
func (e *Endpoint) Down() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.down
}

func (e *Endpoint) deliver(m Message) {
	e.mu.Lock()
	down := e.down
	e.mu.Unlock()
	if down {
		return
	}
	select {
	case e.inbox <- m:
	default:
		// Inbox overflow models a dropped packet.
	}
}
