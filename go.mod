module mspr

go 1.22
