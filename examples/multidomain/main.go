// Multidomain: locally optimistic logging across service-domain
// boundaries (§1.3, §3.1).
//
// A travel-agent MSP composes an airline MSP (same service provider,
// same service domain — fast and reliable links) and a hotel MSP run by
// a different organization (separate domain). Inside the domain,
// requests carry dependency vectors and need no log flush; the call to
// the hotel crosses a domain boundary, so the agent performs a
// distributed log flush before sending — pessimistic logging that keeps
// the domains recovery-independent.
//
// The example books trips, prints each MSP's log-flush counts to make
// the asymmetry visible, then crashes the airline mid-flight and shows
// the agent's session performing orphan recovery transparently.
package main

import (
	"fmt"
	"log"

	"mspr"
)

func airline() mspr.Definition {
	return mspr.Definition{
		Methods: map[string]mspr.Handler{
			"reserveSeat": func(ctx *mspr.Ctx, trip []byte) ([]byte, error) {
				n := len(ctx.GetVar("seats")) + 1
				ctx.SetVar("seats", make([]byte, n))
				return []byte(fmt.Sprintf("seat %d on flight to %s", n, trip)), nil
			},
		},
	}
}

func hotel() mspr.Definition {
	return mspr.Definition{
		Methods: map[string]mspr.Handler{
			"reserveRoom": func(ctx *mspr.Ctx, trip []byte) ([]byte, error) {
				n := len(ctx.GetVar("rooms")) + 1
				ctx.SetVar("rooms", make([]byte, n))
				return []byte(fmt.Sprintf("room %d in %s", n, trip)), nil
			},
		},
	}
}

func agent() mspr.Definition {
	return mspr.Definition{
		Methods: map[string]mspr.Handler{
			"bookTrip": func(ctx *mspr.Ctx, dest []byte) ([]byte, error) {
				seat, err := ctx.Call("airline", "reserveSeat", dest) // same domain: optimistic
				if err != nil {
					return nil, err
				}
				room, err := ctx.Call("hotel", "reserveRoom", dest) // other domain: pessimistic
				if err != nil {
					return nil, err
				}
				trips := append(ctx.GetVar("trips"), byte(len(dest)))
				ctx.SetVar("trips", trips)
				return []byte(fmt.Sprintf("trip #%d booked: %s, %s", len(trips), seat, room)), nil
			},
		},
	}
}

func main() {
	sim := mspr.NewSim(0.02)
	travelDomain := sim.NewDomain("travel-co") // agent + airline
	hotelDomain := sim.NewDomain("hotel-corp") // hotel alone
	agentCfg := sim.NewConfig("agent", travelDomain, agent())
	airlineCfg := sim.NewConfig("airline", travelDomain, airline())
	hotelCfg := sim.NewConfig("hotel", hotelDomain, hotel())

	if _, err := mspr.Start(agentCfg); err != nil {
		log.Fatal(err)
	}
	air, err := mspr.Start(airlineCfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mspr.Start(hotelCfg); err != nil {
		log.Fatal(err)
	}

	client := sim.NewClient("traveller")
	defer client.Close()
	sess := client.Session("agent")

	base := [3]int64{flushes(agentCfg), flushes(airlineCfg), flushes(hotelCfg)}
	for _, dest := range []string{"Beijing", "Boston", "Redmond"} {
		out, err := sess.Call("bookTrip", []byte(dest))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	}
	fmt.Printf("log flushes per trip — agent: %.1f, airline: %.1f (same domain, optimistic), hotel: %.1f (cross-domain, pessimistic)\n",
		float64(flushes(agentCfg)-base[0])/3, float64(flushes(airlineCfg)-base[1])/3, float64(flushes(hotelCfg)-base[2])/3)

	fmt.Println("--- airline crashes with unflushed log records ---")
	air.Crash()
	if _, err := mspr.Start(airlineCfg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- airline recovered; the agent session that depended on its lost state")
	fmt.Println("    performs orphan recovery transparently and the booking still happens once ---")
	out, err := sess.Call("bookTrip", []byte("Shanghai"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}

// flushes reads a configuration's disk write counter.
func flushes(cfg mspr.Config) int64 {
	return cfg.Disk.Stats().Writes
}
