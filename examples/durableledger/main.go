// Durable ledger: exactly-once interaction with a transactional system —
// the paper's stated follow-on work (§7), built from its own pieces.
//
// An account-service MSP (full log-based recovery) moves money between
// accounts stored in a transactional resource manager (a durable,
// journalled store). Every transfer is one atomic transaction tagged with
// an idempotency key derived from the calling session's identity —
// testable transactions. We then crash everything, repeatedly: the
// account service mid-stream, the resource manager mid-stream, both.
// The books always balance and no transfer is ever applied twice.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"mspr"
	"mspr/internal/core"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/txmsp"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func main() {
	sim := mspr.NewSim(0.02)

	// The transactional resource manager: durable store, testable
	// transactions, no MSP logging of its own.
	rmCfg := txmsp.Config{
		ID:        "bank-db",
		Net:       sim.Net,
		Disk:      simdisk.NewDisk(simdisk.DefaultModel(sim.TimeScale)),
		TimeScale: sim.TimeScale,
	}
	rm, err := txmsp.Start(rmCfg)
	if err != nil {
		log.Fatal(err)
	}

	// The account service: a recoverable MSP whose transfer method runs
	// one atomic debit+credit transaction per request.
	def := mspr.Definition{
		Methods: map[string]mspr.Handler{
			// transfer moves 1 unit from "alice" to "bob".
			"transfer": func(ctx *mspr.Ctx, _ []byte) ([]byte, error) {
				res, err := txmsp.Exec(ctx, "bank-db", txmsp.Tx{Ops: []txmsp.Op{
					{Kind: txmsp.OpAdd, Key: "alice", Value: u64(^uint64(0))}, // -1 (wraps)
					{Kind: txmsp.OpAdd, Key: "bob", Value: u64(1)},
					{Kind: txmsp.OpGet, Key: "bob"},
				}})
				if err != nil {
					return nil, err
				}
				n := asU64(ctx.GetVar("transfers")) + 1
				ctx.SetVar("transfers", u64(n))
				return []byte(fmt.Sprintf("transfer %d complete; bob now has %d", n, asU64(res.Values[0]))), nil
			},
		},
	}
	dom := sim.NewDomain("bank")
	appCfg := sim.NewConfig("accounts", dom, def)
	app, err := mspr.Start(appCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Seed alice's account directly.
	seed := core.NewClient("seed", sim.Net, rpc.DefaultCallOptions(sim.TimeScale))
	seedSess := seed.Session("bank-db")
	if _, err := seedSess.Call("exec", (txmsp.Tx{Ops: []txmsp.Op{
		{Kind: txmsp.OpPut, Key: "alice", Value: u64(1000)},
		{Kind: txmsp.OpPut, Key: "bob", Value: u64(0)},
	}}).Encode()); err != nil {
		log.Fatal(err)
	}
	seed.Close()

	client := sim.NewClient("teller")
	defer client.Close()
	sess := client.Session("accounts")

	transfer := func(n int) {
		for i := 0; i < n; i++ {
			out, err := sess.Call("transfer", nil)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(" ", string(out))
		}
	}

	fmt.Println("— normal operation —")
	transfer(3)

	fmt.Println("— crash the account service (its sessions replay; logged replies stand in for the DB) —")
	app.Crash()
	if app, err = mspr.Start(appCfg); err != nil {
		log.Fatal(err)
	}
	transfer(2)

	fmt.Println("— crash the database process (committed transactions survive in its journal) —")
	rm.Crash()
	if rm, err = txmsp.Start(rmCfg); err != nil {
		log.Fatal(err)
	}
	transfer(2)

	fmt.Println("— crash both —")
	app.Crash()
	rm.Crash()
	if rm, err = txmsp.Start(rmCfg); err != nil {
		log.Fatal(err)
	}
	if _, err = mspr.Start(appCfg); err != nil {
		log.Fatal(err)
	}
	transfer(3)

	alice, _ := rm.Read("alice")
	bob, _ := rm.Read("bob")
	fmt.Printf("final books: alice=%d bob=%d (10 transfers, started 1000/0)\n", asU64(alice), asU64(bob))
	if asU64(alice) != 990 || asU64(bob) != 10 {
		log.Fatal("THE BOOKS DO NOT BALANCE — a transfer was lost or duplicated")
	}
	fmt.Println("the books balance: every transfer executed exactly once")
}
