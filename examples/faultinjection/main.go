// Fault injection: a randomized crash storm verifying exactly-once
// execution end-to-end.
//
// Two MSPs in one service domain serve a bank-transfer-like workload
// over a lossy, duplicating network while both MSPs are crash-restarted
// at random points. Every client session maintains an operation counter
// in its session state and the servers maintain a shared ledger total;
// at the end, every counter must equal the number of requests issued and
// the ledger must equal the grand total — any lost or duplicated
// execution fails the run.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"mspr"
	"mspr/internal/simnet"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func frontDef() mspr.Definition {
	return mspr.Definition{
		Methods: map[string]mspr.Handler{
			"deposit": func(ctx *mspr.Ctx, amount []byte) ([]byte, error) {
				// Record in the back office first (intra-domain call).
				if _, err := ctx.Call("back", "record", amount); err != nil {
					return nil, err
				}
				n := asU64(ctx.GetVar("ops")) + 1
				ctx.SetVar("ops", u64(n))
				return u64(n), nil
			},
		},
	}
}

func backDef() mspr.Definition {
	return mspr.Definition{
		Methods: map[string]mspr.Handler{
			"record": func(ctx *mspr.Ctx, amount []byte) ([]byte, error) {
				cur, err := ctx.ReadShared("ledger")
				if err != nil {
					return nil, err
				}
				total := asU64(cur) + asU64(amount)
				if err := ctx.WriteShared("ledger", u64(total)); err != nil {
					return nil, err
				}
				return u64(total), nil
			},
			"total": func(ctx *mspr.Ctx, _ []byte) ([]byte, error) {
				return ctx.ReadShared("ledger")
			},
		},
		Shared: []mspr.SharedDef{{Name: "ledger", Initial: u64(0)}},
	}
}

func main() {
	const (
		sessions    = 6
		perSession  = 40
		crashEveryN = 35 // requests between random crash-restarts
	)
	sim := mspr.NewSim(0.005)
	// A hostile network: loss and duplication on every link.
	sim.Net = lossyNet(sim)
	dom := sim.NewDomain("bank")
	frontCfg := sim.NewConfig("front", dom, frontDef())
	backCfg := sim.NewConfig("back", dom, backDef())
	frontCfg.SessionCkptThreshold = 32 << 10
	backCfg.SessionCkptThreshold = 32 << 10

	front, err := mspr.Start(frontCfg)
	if err != nil {
		log.Fatal(err)
	}
	back, err := mspr.Start(backCfg)
	if err != nil {
		log.Fatal(err)
	}

	var (
		mu      sync.Mutex
		crashes int
		reqs    atomic.Int64
	)
	rng := rand.New(rand.NewSource(7))
	crashOne := func() {
		mu.Lock()
		defer mu.Unlock()
		if rng.Intn(2) == 0 {
			back.Crash()
			b, err := mspr.Start(backCfg)
			if err != nil {
				log.Fatal(err)
			}
			back = b
		} else {
			front.Crash()
			f, err := mspr.Start(frontCfg)
			if err != nil {
				log.Fatal(err)
			}
			front = f
		}
		crashes++
	}

	client := sim.NewClient("teller")
	defer client.Close()
	var wg sync.WaitGroup
	var failed atomic.Bool
	grandTotal := uint64(0)
	for s := 0; s < sessions; s++ {
		amount := uint64(s + 1)
		grandTotal += amount * perSession
		wg.Add(1)
		go func(amount uint64) {
			defer wg.Done()
			sess := client.Session("front")
			for i := 1; i <= perSession; i++ {
				out, err := sess.Call("deposit", u64(amount))
				if err != nil {
					fmt.Printf("deposit failed: %v\n", err)
					failed.Store(true)
					return
				}
				if got := asU64(out); got != uint64(i) {
					fmt.Printf("EXACTLY-ONCE VIOLATION: op counter %d, want %d\n", got, i)
					failed.Store(true)
					return
				}
				if n := reqs.Add(1); n%crashEveryN == 0 {
					crashOne()
				}
			}
		}(amount)
	}
	wg.Wait()

	check := client.Session("front")
	_ = check
	audit := client.Session("back")
	out, err := audit.Call("total", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d sessions × %d deposits with %d crash-restarts on a lossy network\n",
		sessions, perSession, crashes)
	fmt.Printf("ledger total: %d (expected %d)\n", asU64(out), grandTotal)
	if failed.Load() || asU64(out) != grandTotal {
		log.Fatal("FAILED: lost or duplicated executions detected")
	}
	fmt.Println("PASS: every deposit executed exactly once")
}

// lossyNet rebuilds the simulation network with loss and duplication.
func lossyNet(sim *mspr.Sim) *simnet.Network {
	return simnet.New(simnet.Config{
		OneWay:    sim.DomainLatency,
		TimeScale: sim.TimeScale,
		LossRate:  0.05,
		DupRate:   0.05,
		Seed:      11,
	})
}
