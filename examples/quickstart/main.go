// Quickstart: a recoverable counter service.
//
// The service keeps a per-session counter in session state and a global
// counter in shared state. We run a few requests, crash the server —
// losing every byte of its in-memory state — restart it, and keep
// calling: both counters continue exactly where they left off, and no
// increment is ever lost or applied twice.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"mspr"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func asU64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func counterService() mspr.Definition {
	return mspr.Definition{
		Methods: map[string]mspr.Handler{
			// increment bumps the session-private counter and the shared
			// global counter, returning "mine/global".
			"increment": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
				mine := asU64(ctx.GetVar("count")) + 1
				ctx.SetVar("count", u64(mine))

				g, err := ctx.ReadShared("global")
				if err != nil {
					return nil, err
				}
				global := asU64(g) + 1
				if err := ctx.WriteShared("global", u64(global)); err != nil {
					return nil, err
				}
				return []byte(fmt.Sprintf("%d/%d", mine, global)), nil
			},
		},
		Shared: []mspr.SharedDef{{Name: "global", Initial: u64(0)}},
	}
}

func main() {
	sim := mspr.NewSim(0.02) // run 50× faster than the paper's wall clock
	dom := sim.NewDomain("quickstart")
	cfg := sim.NewConfig("counter", dom, counterService())

	srv, err := mspr.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}

	client := sim.NewClient("client")
	defer client.Close()
	alice := client.Session("counter")
	bob := client.Session("counter")

	fmt.Println("-- before the crash --")
	for i := 0; i < 3; i++ {
		a, err := alice.Call("increment", nil)
		if err != nil {
			log.Fatal(err)
		}
		b, err := bob.Call("increment", nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alice: %s   bob: %s\n", a, b)
	}

	fmt.Println("-- crash! all in-memory state lost --")
	srv.Crash()
	if _, err := mspr.Start(cfg); err != nil { // same config, same disk
		log.Fatal(err)
	}
	fmt.Println("-- restarted; log-based recovery restored every session --")

	for i := 0; i < 3; i++ {
		a, err := alice.Call("increment", nil)
		if err != nil {
			log.Fatal(err)
		}
		b, err := bob.Call("increment", nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alice: %s   bob: %s\n", a, b)
	}
	fmt.Println("every count continued exactly once — no loss, no duplicates")
}
