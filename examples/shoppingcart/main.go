// Shopping cart: the paper's motivating middle-tier scenario (§1.3).
//
// A storefront MSP keeps each customer's cart in private session state
// and caches product inventory in shared in-memory state — the pattern
// the paper highlights: "an MSP program can now cache shared state
// retrieved from a database, enabling later requests to have speedy
// access to it". Without log-based recovery, a crash would drop every
// cart and the cache; here the server crashes mid-shopping-spree and
// every cart, reservation and cache entry survives with exactly-once
// semantics.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"strings"

	"mspr"
)

func u32(v uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, v)
	return b
}

func asU32(b []byte) uint32 {
	if len(b) < 4 {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// storefront sells two products with limited stock, cached as shared
// variables "stock/<sku>".
func storefront() mspr.Definition {
	return mspr.Definition{
		Methods: map[string]mspr.Handler{
			// add <sku> reserves one unit and appends it to the cart.
			"add": func(ctx *mspr.Ctx, sku []byte) ([]byte, error) {
				key := "stock/" + string(sku)
				raw, err := ctx.ReadShared(key)
				if err != nil {
					return nil, fmt.Errorf("unknown product %q", sku)
				}
				stock := asU32(raw)
				if stock == 0 {
					return nil, fmt.Errorf("%s is sold out", sku)
				}
				if err := ctx.WriteShared(key, u32(stock-1)); err != nil {
					return nil, err
				}
				cart := ctx.GetVar("cart")
				if len(cart) > 0 {
					cart = append(cart, ',')
				}
				cart = append(cart, sku...)
				ctx.SetVar("cart", cart)
				return []byte(fmt.Sprintf("added %s, %d left", sku, stock-1)), nil
			},
			// cart returns the session's cart contents.
			"cart": func(ctx *mspr.Ctx, _ []byte) ([]byte, error) {
				return ctx.GetVar("cart"), nil
			},
			// checkout empties the cart and reports what was bought.
			"checkout": func(ctx *mspr.Ctx, _ []byte) ([]byte, error) {
				cart := ctx.GetVar("cart")
				ctx.SetVar("cart", nil)
				if len(cart) == 0 {
					return []byte("nothing to buy"), nil
				}
				n := strings.Count(string(cart), ",") + 1
				return []byte(fmt.Sprintf("bought %d items: %s", n, cart)), nil
			},
		},
		Shared: []mspr.SharedDef{
			{Name: "stock/gopher", Initial: u32(5)},
			{Name: "stock/manual", Initial: u32(2)},
		},
	}
}

func main() {
	sim := mspr.NewSim(0.02)
	dom := sim.NewDomain("shop")
	cfg := sim.NewConfig("storefront", dom, storefront())
	srv, err := mspr.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}

	client := sim.NewClient("browser")
	defer client.Close()
	alice := client.Session("storefront")
	bob := client.Session("storefront")

	say := func(who string, out []byte, err error) {
		if err != nil {
			fmt.Printf("%8s: ERROR %v\n", who, err)
			return
		}
		fmt.Printf("%8s: %s\n", who, out)
	}

	out, err := alice.Call("add", []byte("gopher"))
	say("alice", out, err)
	out, err = bob.Call("add", []byte("gopher"))
	say("bob", out, err)
	out, err = alice.Call("add", []byte("manual"))
	say("alice", out, err)

	fmt.Println("   --- storefront crashes: carts and cache were all in memory ---")
	srv.Crash()
	if _, err := mspr.Start(cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("   --- restarted: sessions and shared stock recovered from the log ---")

	out, err = alice.Call("cart", nil)
	say("alice", out, err)
	out, err = bob.Call("add", []byte("manual"))
	say("bob", out, err)
	out, err = bob.Call("add", []byte("manual"))
	say("bob", out, err) // the last manual went to bob's first post-crash add
	out, err = alice.Call("checkout", nil)
	say("alice", out, err)
	out, err = bob.Call("checkout", nil)
	say("bob", out, err)
}
