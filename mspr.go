// Package mspr is a log-based recovery infrastructure for middleware
// servers, reproducing "Log-Based Recovery for Middleware Servers"
// (Wang, Salzberg, Lomet — SIGMOD 2007).
//
// An MSP (middleware server process) serves client requests with a
// thread pool, keeps private in-memory session state per client and
// shared in-memory state across clients, and may call other MSPs while
// serving a request. The recovery infrastructure is transparent to
// service methods: it logs every source of nondeterminism to a single
// physical log per MSP, checkpoints sessions, shared variables and the
// MSP itself, and after a crash replays logged requests to restore all
// business state — guaranteeing exactly-once execution semantics and
// inter-MSP consistency (no orphan states), with parallel session
// recovery from the shared log.
//
// MSPs are grouped into service domains. Message exchanges within a
// domain use optimistic logging with per-session dependency vectors (few
// log flushes); exchanges across domains — including all end-client
// traffic — use pessimistic logging via a distributed log flush before
// send. This "locally optimistic logging" is the paper's headline
// technique: it keeps logging overhead low inside a domain while
// preserving recovery independence between domains.
//
// # Quick start
//
//	sim := mspr.NewSim(0.02) // model latencies at 1/50 wall-clock speed
//	dom := sim.NewDomain("shop")
//	def := mspr.Definition{
//		Methods: map[string]mspr.Handler{
//			"hello": func(ctx *mspr.Ctx, arg []byte) ([]byte, error) {
//				ctx.SetVar("last", arg)
//				return append([]byte("hello, "), arg...), nil
//			},
//		},
//	}
//	srv, err := mspr.Start(sim.NewConfig("msp1", dom, def))
//	if err != nil { ... }
//	client := sim.NewClient("client-1")
//	sess := client.Session("msp1")
//	reply, err := sess.Call("hello", []byte("world"))
//
// Crash an MSP with srv.Crash() and restart it by calling Start again
// with the same configuration: the new incarnation recovers every
// session and shared variable from the log, and in-flight requests
// execute exactly once.
//
// The implementation lives in internal packages; this package re-exports
// the user-facing API. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
package mspr

import (
	"time"

	"mspr/internal/core"
	"mspr/internal/rpc"
	"mspr/internal/simdisk"
	"mspr/internal/simnet"
)

// Re-exported core types. See the internal/core documentation on each.
type (
	// Server is a middleware server process (MSP): a crash unit hosting
	// sessions and shared variables, logging to one physical log.
	Server = core.Server
	// Config assembles an MSP; obtain defaults from Sim.NewConfig or
	// core.NewConfig.
	Config = core.Config
	// Definition supplies an MSP's service methods and shared variables.
	Definition = core.Definition
	// Handler is a service method; it must be deterministic given its
	// argument, the session variables, and the values obtained through
	// Ctx (recovery re-executes it).
	Handler = core.Handler
	// SharedDef declares a shared variable and its initial value.
	SharedDef = core.SharedDef
	// Ctx is the execution context passed to service methods.
	Ctx = core.Ctx
	// Domain is a service domain: the boundary between optimistic and
	// pessimistic logging.
	Domain = core.Domain
	// Client is an end client process outside every service domain.
	Client = core.Client
	// ClientSession is one end-client session with an MSP.
	ClientSession = core.ClientSession
	// DurableClient is an end client whose session progress survives its
	// own crashes (exactly-once end to end, including the client).
	DurableClient = core.DurableClient
	// DurableSession is one durable end-client session.
	DurableSession = core.DurableSession
	// Stats exposes a server's recovery-infrastructure counters.
	Stats = core.ServerStats
	// AppError is an application-level error returned by a service
	// method and transported in the reply.
	AppError = rpc.AppError
)

// Start launches an MSP, running full crash recovery if its disk holds a
// log from a previous incarnation.
func Start(cfg Config) (*Server, error) { return core.Start(cfg) }

// Sim bundles the simulated environment the servers run in: a network
// and a time scale for every modelled latency (1.0 = the paper's
// wall-clock milliseconds; 0.02 runs 50× faster with identical ratios).
type Sim struct {
	Net       *simnet.Network
	TimeScale float64
	// DomainLatency is the one-way latency of intra-domain control
	// traffic and the default MSP↔MSP link (the paper measures a round
	// trip of ≈3.6 ms).
	DomainLatency time.Duration
}

// NewSim creates a simulation at the given time scale with the paper's
// network latencies.
func NewSim(timeScale float64) *Sim {
	const oneWay = 1798 * time.Microsecond // half of the 3.596 ms round trip
	return &Sim{
		Net:           simnet.New(simnet.Config{OneWay: oneWay, TimeScale: timeScale}),
		TimeScale:     timeScale,
		DomainLatency: oneWay,
	}
}

// NewDomain creates a service domain on this simulation.
func (s *Sim) NewDomain(name string) *Domain {
	return core.NewDomain(name, s.DomainLatency, s.TimeScale)
}

// NewDisk creates a dedicated simulated log disk with the paper's
// 7200 RPM model.
func (s *Sim) NewDisk() *simdisk.Disk {
	return simdisk.NewDisk(simdisk.DefaultModel(s.TimeScale))
}

// NewConfig returns an experiment-ready MSP configuration with a fresh
// dedicated disk: logging on, 1 MB session-checkpoint threshold.
func (s *Sim) NewConfig(id string, domain *Domain, def Definition) Config {
	return core.NewConfig(id, domain, s.NewDisk(), s.Net, def)
}

// NewClient creates an end client attached to the simulation's network.
func (s *Sim) NewClient(id string) *Client {
	return core.NewClient(id, s.Net, rpc.DefaultCallOptions(s.TimeScale))
}

// NewDurableClient creates (or reopens after a crash) an end client whose
// session progress is persisted on disk, so exactly-once execution
// extends across client crashes too.
func (s *Sim) NewDurableClient(id string, disk *simdisk.Disk) (*DurableClient, error) {
	return core.NewDurableClient(id, s.Net, disk, rpc.DefaultCallOptions(s.TimeScale))
}
